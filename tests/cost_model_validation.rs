//! The cost model stack agrees with itself: the virtual-time simulator
//! reproduces the paper's closed-form total time on uniform workloads, the
//! compiler's stage-time estimates line up with the simulator, and the
//! environment knobs (width, bandwidth, disk) move results the right way.
//! Randomized cases come from a seeded PRNG (the build is offline, so no
//! proptest).

use cgp_core::grid::{analytic_total_time, simulate, GridConfig, LinkSpec, PacketWork};
use cgp_obs::SmallRng;

fn uniform(n: usize, ops: Vec<f64>, bytes: Vec<f64>) -> Vec<PacketWork> {
    (0..n)
        .map(|_| PacketWork {
            comp_ops: ops.clone(),
            bytes: bytes.clone(),
            read_bytes: 0.0,
        })
        .collect()
}

#[test]
fn simulator_matches_closed_form_on_uniform_chains() {
    let mut rng = SmallRng::seed_from_u64(0xCE_0001);
    for case in 0..128 {
        let m = rng.gen_range(1, 5);
        let n = rng.gen_range(1, 200);
        let ops: Vec<f64> = (0..m).map(|_| 1.0 + rng.gen_f64() * 1e6).collect();
        let bytes: Vec<f64> = (0..m - 1).map(|_| rng.gen_f64() * 1e6).collect();
        let power = 1.0 + rng.gen_f64() * 1e9;
        let bw = 1.0 + rng.gen_f64() * 1e9;

        let grid = GridConfig::uniform_chain(
            m,
            power,
            LinkSpec {
                bandwidth: bw,
                latency: 1e-5,
            },
        );
        let pkts = uniform(n, ops.clone(), bytes.clone());
        let sim = simulate(&grid, &pkts, &[]);
        let ana = analytic_total_time(
            &grid,
            &PacketWork {
                comp_ops: ops,
                bytes,
                read_bytes: 0.0,
            },
            n as u64,
        );
        assert!(
            (sim.makespan - ana).abs() <= 1e-9 * ana.max(1.0),
            "case {case}: sim {} vs analytic {}",
            sim.makespan,
            ana
        );
    }
}

#[test]
fn wider_stages_never_slow_the_pipeline() {
    let mut rng = SmallRng::seed_from_u64(0xCE_0002);
    for case in 0..128 {
        let n = rng.gen_range(1, 100);
        let ops: Vec<f64> = (0..3).map(|_| 1.0 + rng.gen_f64() * 1e6).collect();
        let bytes: Vec<f64> = (0..2).map(|_| rng.gen_f64() * 1e5).collect();

        let link = LinkSpec {
            bandwidth: 1e6,
            latency: 1e-5,
        };
        let pkts = uniform(n, ops.clone(), bytes.clone());
        let t1 = simulate(&GridConfig::w_w_1(1, 1e6, link), &pkts, &[]).makespan;
        let t2 = simulate(&GridConfig::w_w_1(2, 1e6, link), &pkts, &[]).makespan;
        let t4 = simulate(&GridConfig::w_w_1(4, 1e6, link), &pkts, &[]).makespan;
        assert!(t2 <= t1 * (1.0 + 1e-9), "case {case}");
        assert!(t4 <= t2 * (1.0 + 1e-9), "case {case}");
    }
}

#[test]
fn more_bandwidth_never_hurts() {
    let mut rng = SmallRng::seed_from_u64(0xCE_0003);
    for case in 0..128 {
        let n = rng.gen_range(1, 100);
        let ops: Vec<f64> = (0..3).map(|_| 1.0 + rng.gen_f64() * 1e6).collect();
        let bytes: Vec<f64> = (0..2).map(|_| 1.0 + rng.gen_f64() * 1e6).collect();

        let pkts = uniform(n, ops, bytes);
        let slow = simulate(
            &GridConfig::w_w_1(
                2,
                1e6,
                LinkSpec {
                    bandwidth: 1e5,
                    latency: 1e-5,
                },
            ),
            &pkts,
            &[1e4, 1e4],
        )
        .makespan;
        let fast = simulate(
            &GridConfig::w_w_1(
                2,
                1e6,
                LinkSpec {
                    bandwidth: 1e7,
                    latency: 1e-5,
                },
            ),
            &pkts,
            &[1e4, 1e4],
        )
        .makespan;
        assert!(fast <= slow * (1.0 + 1e-9), "case {case}");
    }
}

#[test]
fn disk_reads_only_add_time_at_stage_zero() {
    let mut rng = SmallRng::seed_from_u64(0xCE_0004);
    for case in 0..128 {
        let n = rng.gen_range(1, 50);
        let read = 1.0 + rng.gen_f64() * 1e7;

        let link = LinkSpec {
            bandwidth: 1e7,
            latency: 1e-5,
        };
        let mut pkts = uniform(n, vec![1e3, 1e3, 1e3], vec![1e3, 1e3]);
        for p in &mut pkts {
            p.read_bytes = read;
        }
        let no_disk = simulate(&GridConfig::w_w_1(1, 1e6, link), &pkts, &[]).makespan;
        let with_disk = simulate(
            &GridConfig::w_w_1(1, 1e6, link).with_stage0_disk(3.5e7),
            &pkts,
            &[],
        )
        .makespan;
        assert!(with_disk > no_disk, "case {case}: {with_disk} vs {no_disk}");
        // And the added time is at least the serialized read on one disk.
        let read_time = read * n as f64 / 3.5e7;
        assert!(with_disk + 1e-12 >= no_disk.max(read_time), "case {case}");
    }
}

#[test]
fn compiler_stage_times_agree_with_grid_analytic() {
    // Compile a program; its StageTimes, fed through the paper formula,
    // must equal the grid crate's analytic evaluation of the same
    // per-packet work.
    use cgp_core::{compile, CompileOptions, PipelineEnv};
    let src = r#"
        extern int n;
        extern double[] xs;
        class Acc implements Reducinterface {
            double t;
            void reduce(Acc o) { t = t + o.t; }
            void add(double v) { t = t + v; }
        }
        class A { void main() {
            RectDomain<1> all = [0 : n - 1];
            Acc acc = new Acc();
            PipelinedLoop (pkt in all; 8) {
                foreach (i in pkt) {
                    double v = xs[i] * 2.0;
                    if (v > 1.0) { acc.add(v); }
                }
            }
            print(acc.t);
        } }
    "#;
    let opts =
        CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 1e-4), 128).with_symbol("n", 1024);
    let c = compile(src, &opts).unwrap();
    let st = c.stage_times();
    let n_packets = 64u64;
    let total = st.total_time(n_packets);

    // Rebuild the same pipeline in grid terms.
    let grid = GridConfig::uniform_chain(
        3,
        1e8,
        LinkSpec {
            bandwidth: 1e7,
            latency: 1e-4,
        },
    );
    let work = PacketWork {
        comp_ops: st.comp.iter().map(|t| t * 1e8).collect(),
        bytes: st.comm.iter().map(|t| (t - 1e-4) * 1e7).collect(),
        read_bytes: 0.0,
    };
    let ana = analytic_total_time(&grid, &work, n_packets);
    assert!(
        (total - ana).abs() < 1e-9 * total.max(1.0),
        "{total} vs {ana}"
    );
}
