//! End-to-end: all four dialect applications compile, decompose, and their
//! decomposed executions reproduce the sequential interpreter exactly.

use cgp_core::apps::dialect::*;
use cgp_core::apps::isosurface::ScalarGrid;
use cgp_core::apps::knn::generate_points;
use cgp_core::apps::vmscope::Slide;
use cgp_core::lang::{frontend, HostEnv, Interp};
use cgp_core::{compile, run_plan_sequential, CompileOptions, Objective, PipelineEnv};

fn oracle(src: &str, host: &HostEnv) -> Vec<String> {
    let tp = frontend(src).unwrap();
    let mut it = Interp::new(&tp, host.clone());
    it.run_main().unwrap();
    it.output
}

fn iso_host() -> HostEnv {
    iso_host_env(&ScalarGrid::synthetic(10, 10, 10, 77), 0.75, 24, 6)
}

#[test]
fn zbuf_end_to_end() {
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 1e-5), 128)
        .with_symbol("ncubes", 729)
        .with_symbol("screen", 24)
        .with_selectivity(0, 0.2);
    let c = compile(ZBUF_SRC, &opts).unwrap();
    assert_eq!(c.plan.m, 3);
    assert!(c.plan.graph.n_boundaries() >= 2, "{}", c.plan.describe());
    let host = iso_host();
    assert_eq!(
        run_plan_sequential(&c.plan, &host).unwrap(),
        oracle(ZBUF_SRC, &host)
    );
}

#[test]
fn apix_end_to_end() {
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 1e-5), 128)
        .with_symbol("ncubes", 729)
        .with_symbol("screen", 24);
    let c = compile(APIX_SRC, &opts).unwrap();
    let host = iso_host();
    assert_eq!(
        run_plan_sequential(&c.plan, &host).unwrap(),
        oracle(APIX_SRC, &host)
    );
}

#[test]
fn knn_end_to_end() {
    let pts = generate_points(400, 9);
    let host = knn_host_env(&pts, [0.2, 0.8, 0.5], 7, 5);
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 80)
        .with_symbol("npoints", 400)
        .with_symbol("k", 7);
    let c = compile(KNN_SRC, &opts).unwrap();
    assert_eq!(
        run_plan_sequential(&c.plan, &host).unwrap(),
        oracle(KNN_SRC, &host)
    );
}

#[test]
fn vmscope_end_to_end() {
    let slide = Slide::synthetic(48, 48, 3);
    let host = vmscope_host_env(&slide, 3, 4);
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 12)
        .with_symbol("height", 48)
        .with_symbol("width", 48)
        .with_symbol("subsample", 3)
        .with_selectivity(0, 0.34);
    let c = compile(VMSCOPE_SRC, &opts).unwrap();
    assert_eq!(
        run_plan_sequential(&c.plan, &host).unwrap(),
        oracle(VMSCOPE_SRC, &host)
    );
}

#[test]
fn steady_state_decompositions_beat_default_everywhere() {
    // For every app, the compiler's steady-state choice must cost no more
    // than the Default placement under the paper's total-time formula.
    let cases: Vec<(&str, CompileOptions)> = vec![
        (
            ZBUF_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e8, 1e-5), 512)
                .with_symbol("ncubes", 100_000)
                .with_symbol("screen", 256)
                .with_selectivity(0, 0.1),
        ),
        (
            KNN_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e8, 1e-5), 4096)
                .with_symbol("npoints", 1_000_000)
                .with_symbol("k", 3),
        ),
        (
            VMSCOPE_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e8, 1e-5), 32)
                .with_symbol("height", 1024)
                .with_symbol("width", 1024)
                .with_symbol("subsample", 8)
                .with_selectivity(0, 0.125),
        ),
    ];
    for (src, opts) in cases {
        let opts = opts.with_objective(Objective::SteadyState { n_packets: 64 });
        let c = compile(src, &opts).unwrap();
        let default = cgp_core::Decomposition::default_style(c.problem.n_tasks(), 3);
        let default_cost =
            cgp_compiler::decompose::stage_times(&c.problem, &c.pipeline, &default.unit_of)
                .total_time(64);
        assert!(
            c.plan.decomposition.cost <= default_cost * (1.0 + 1e-9),
            "decomp {} vs default {default_cost}\n{}",
            c.plan.decomposition.cost,
            c.plan.describe()
        );
    }
}

#[test]
fn plan_description_names_every_filter_and_link() {
    let opts = CompileOptions::new(PipelineEnv::uniform(4, 1e8, 1e6, 1e-5), 64)
        .with_symbol("npoints", 400)
        .with_symbol("k", 3);
    let c = compile(KNN_SRC, &opts).unwrap();
    let d = c.plan.describe();
    for f in ["f1", "f2", "f3", "f4", "L1", "L2", "L3"] {
        assert!(d.contains(f), "{d}");
    }
}
