//! Property-style validation of the decomposition algorithms: the `O(nm)`
//! dynamic program must always match the brute-force optimum, and its
//! assignments must be well-formed. Cases come from a seeded PRNG (the
//! build is offline, so no proptest).

use cgp_compiler::cost::{OpCount, PipelineEnv};
use cgp_compiler::decompose::{
    decompose_brute_force, decompose_dp, decompose_dp_cost_only, evaluate, stage_times, Problem,
};
use cgp_obs::SmallRng;

fn random_problem(rng: &mut SmallRng) -> Problem {
    // n atoms in 1..=8, with bounded positive work/volumes.
    let n = rng.gen_range(1, 9);
    let mut tasks = vec![OpCount::zero()];
    tasks.extend((0..n).map(|_| OpCount {
        flops: 1.0 + rng.gen_f64() * 1e4,
        iops: 1.0,
        mem: 1.0,
    }));
    let mut volumes: Vec<f64> = (0..=n).map(|_| rng.gen_f64() * 1e6).collect();
    let last = volumes.len() - 1;
    volumes[last] = 0.0;
    Problem::synthetic(tasks, volumes)
}

fn random_env(rng: &mut SmallRng) -> PipelineEnv {
    PipelineEnv::uniform(
        rng.gen_range(1, 6),
        1.0 + rng.gen_f64() * 1e6,
        1.0 + rng.gen_f64() * 1e6,
        rng.gen_f64() * 1e-2,
    )
}

#[test]
fn dp_matches_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0xD0_0001);
    for case in 0..200 {
        let p = random_problem(&mut rng);
        let env = random_env(&mut rng);
        let dp = decompose_dp(&p, &env);
        let bf = decompose_brute_force(&p, &env);
        assert!(
            (dp.cost - bf.cost).abs() <= 1e-9 * (1.0 + bf.cost.abs()),
            "case {case}: dp {} vs bf {}",
            dp.cost,
            bf.cost
        );
    }
}

#[test]
fn rolling_matches_full_table() {
    let mut rng = SmallRng::seed_from_u64(0xD0_0002);
    for case in 0..200 {
        let p = random_problem(&mut rng);
        let env = random_env(&mut rng);
        let full = decompose_dp(&p, &env).cost;
        let roll = decompose_dp_cost_only(&p, &env);
        assert!(
            (full - roll).abs() <= 1e-12 * (1.0 + full.abs()),
            "case {case}"
        );
    }
}

#[test]
fn dp_assignment_is_wellformed_and_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xD0_0003);
    for case in 0..200 {
        let p = random_problem(&mut rng);
        let env = random_env(&mut rng);
        let dp = decompose_dp(&p, &env);
        assert_eq!(dp.unit_of.len(), p.n_tasks(), "case {case}");
        assert_eq!(
            dp.unit_of[0], 0,
            "case {case}: virtual source pinned to the data host"
        );
        assert!(
            dp.unit_of.windows(2).all(|w| w[0] <= w[1]),
            "case {case}: monotone"
        );
        assert!(dp.unit_of.iter().all(|u| *u < env.m()), "case {case}");
        // The reported cost equals re-evaluating the assignment.
        let ev = evaluate(&p, &env, &dp.unit_of);
        assert!(
            (ev - dp.cost).abs() <= 1e-9 * (1.0 + ev.abs()),
            "case {case}"
        );
        // And equals the sum of its stage times.
        let st = stage_times(&p, &env, &dp.unit_of);
        let total: f64 = st.comp.iter().sum::<f64>() + st.comm.iter().sum::<f64>();
        assert!(
            (total - dp.cost).abs() <= 1e-9 * (1.0 + total.abs()),
            "case {case}"
        );
    }
}

#[test]
fn dp_never_beaten_by_random_assignment() {
    let mut rng = SmallRng::seed_from_u64(0xD0_0004);
    for case in 0..200 {
        let p = random_problem(&mut rng);
        let env = random_env(&mut rng);
        let dp = decompose_dp(&p, &env);
        // Build a random monotone assignment.
        let n = p.n_tasks();
        let mut unit_of = vec![0usize; n];
        let mut cur = 0usize;
        for slot in unit_of.iter_mut().skip(1) {
            cur = (cur + rng.gen_range(0, 2)).min(env.m() - 1);
            *slot = cur;
        }
        let cost = evaluate(&p, &env, &unit_of);
        assert!(
            dp.cost <= cost + 1e-9 * (1.0 + cost.abs()),
            "case {case}: dp {} beaten by {:?} = {}",
            dp.cost,
            unit_of,
            cost
        );
    }
}
