//! Property-based validation of the decomposition algorithms: the `O(nm)`
//! dynamic program must always match the brute-force optimum, and its
//! assignments must be well-formed.

use cgp_compiler::cost::{OpCount, PipelineEnv};
use cgp_compiler::decompose::{
    decompose_brute_force, decompose_dp, decompose_dp_cost_only, evaluate, stage_times, Problem,
};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Problem> {
    // n atoms in 1..=8, with bounded positive work/volumes.
    (1usize..=8).prop_flat_map(|n| {
        (
            proptest::collection::vec(1.0f64..1e4, n),
            proptest::collection::vec(0.0f64..1e6, n + 1),
        )
            .prop_map(move |(work, vols)| {
                let mut tasks = vec![OpCount::zero()];
                tasks.extend(work.iter().map(|w| OpCount { flops: *w, iops: 1.0, mem: 1.0 }));
                let mut volumes = vols;
                let last = volumes.len() - 1;
                volumes[last] = 0.0;
                Problem::synthetic(tasks, volumes)
            })
    })
}

fn arb_env() -> impl Strategy<Value = PipelineEnv> {
    (1usize..=5, 1.0f64..1e6, 1.0f64..1e6, 0.0f64..1e-2)
        .prop_map(|(m, p, b, l)| PipelineEnv::uniform(m, p, b, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn dp_matches_brute_force(p in arb_problem(), env in arb_env()) {
        let dp = decompose_dp(&p, &env);
        let bf = decompose_brute_force(&p, &env);
        prop_assert!((dp.cost - bf.cost).abs() <= 1e-9 * (1.0 + bf.cost.abs()),
            "dp {} vs bf {}", dp.cost, bf.cost);
    }

    #[test]
    fn rolling_matches_full_table(p in arb_problem(), env in arb_env()) {
        let full = decompose_dp(&p, &env).cost;
        let roll = decompose_dp_cost_only(&p, &env);
        prop_assert!((full - roll).abs() <= 1e-12 * (1.0 + full.abs()));
    }

    #[test]
    fn dp_assignment_is_wellformed_and_consistent(p in arb_problem(), env in arb_env()) {
        let dp = decompose_dp(&p, &env);
        prop_assert_eq!(dp.unit_of.len(), p.n_tasks());
        prop_assert_eq!(dp.unit_of[0], 0, "virtual source pinned to the data host");
        prop_assert!(dp.unit_of.windows(2).all(|w| w[0] <= w[1]), "monotone");
        prop_assert!(dp.unit_of.iter().all(|u| *u < env.m()));
        // The reported cost equals re-evaluating the assignment.
        let ev = evaluate(&p, &env, &dp.unit_of);
        prop_assert!((ev - dp.cost).abs() <= 1e-9 * (1.0 + ev.abs()));
        // And equals the sum of its stage times.
        let st = stage_times(&p, &env, &dp.unit_of);
        let total: f64 = st.comp.iter().sum::<f64>() + st.comm.iter().sum::<f64>();
        prop_assert!((total - dp.cost).abs() <= 1e-9 * (1.0 + total.abs()));
    }

    #[test]
    fn dp_never_beaten_by_random_assignment(
        p in arb_problem(),
        env in arb_env(),
        seed in proptest::collection::vec(0usize..5, 10),
    ) {
        let dp = decompose_dp(&p, &env);
        // Build a random monotone assignment from the seed.
        let n = p.n_tasks();
        let mut unit_of = vec![0usize; n];
        let mut cur = 0usize;
        for i in 1..n {
            cur = (cur + seed[i % seed.len()] % 2).min(env.m() - 1);
            unit_of[i] = cur;
        }
        let cost = evaluate(&p, &env, &unit_of);
        prop_assert!(dp.cost <= cost + 1e-9 * (1.0 + cost.abs()),
            "dp {} beaten by {:?} = {}", dp.cost, unit_of, cost);
    }
}
