/root/repo/target/release/deps/fig07_apix_small-3cbe4bf6208ae44c.d: crates/bench/src/bin/fig07_apix_small.rs

/root/repo/target/release/deps/fig07_apix_small-3cbe4bf6208ae44c: crates/bench/src/bin/fig07_apix_small.rs

crates/bench/src/bin/fig07_apix_small.rs:
