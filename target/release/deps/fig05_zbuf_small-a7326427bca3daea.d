/root/repo/target/release/deps/fig05_zbuf_small-a7326427bca3daea.d: crates/bench/src/bin/fig05_zbuf_small.rs

/root/repo/target/release/deps/fig05_zbuf_small-a7326427bca3daea: crates/bench/src/bin/fig05_zbuf_small.rs

crates/bench/src/bin/fig05_zbuf_small.rs:
