/root/repo/target/release/deps/ablation_packet_size-94c4a0b033991498.d: crates/bench/src/bin/ablation_packet_size.rs

/root/repo/target/release/deps/ablation_packet_size-94c4a0b033991498: crates/bench/src/bin/ablation_packet_size.rs

crates/bench/src/bin/ablation_packet_size.rs:
