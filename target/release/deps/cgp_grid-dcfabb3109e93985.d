/root/repo/target/release/deps/cgp_grid-dcfabb3109e93985.d: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

/root/repo/target/release/deps/libcgp_grid-dcfabb3109e93985.rlib: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

/root/repo/target/release/deps/libcgp_grid-dcfabb3109e93985.rmeta: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

crates/grid/src/lib.rs:
crates/grid/src/adaptive.rs:
crates/grid/src/config.rs:
crates/grid/src/sim.rs:
