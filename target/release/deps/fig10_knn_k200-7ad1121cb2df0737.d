/root/repo/target/release/deps/fig10_knn_k200-7ad1121cb2df0737.d: crates/bench/src/bin/fig10_knn_k200.rs

/root/repo/target/release/deps/fig10_knn_k200-7ad1121cb2df0737: crates/bench/src/bin/fig10_knn_k200.rs

crates/bench/src/bin/fig10_knn_k200.rs:
