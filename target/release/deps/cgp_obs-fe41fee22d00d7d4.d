/root/repo/target/release/deps/cgp_obs-fe41fee22d00d7d4.d: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libcgp_obs-fe41fee22d00d7d4.rlib: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libcgp_obs-fe41fee22d00d7d4.rmeta: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/bench.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/rng.rs:
crates/obs/src/sink.rs:
crates/obs/src/trace.rs:
