/root/repo/target/release/deps/fig11_vmscope_small-c61dbed16d976a80.d: crates/bench/src/bin/fig11_vmscope_small.rs

/root/repo/target/release/deps/fig11_vmscope_small-c61dbed16d976a80: crates/bench/src/bin/fig11_vmscope_small.rs

crates/bench/src/bin/fig11_vmscope_small.rs:
