/root/repo/target/release/deps/fig08_apix_large-58728af1997c9e24.d: crates/bench/src/bin/fig08_apix_large.rs

/root/repo/target/release/deps/fig08_apix_large-58728af1997c9e24: crates/bench/src/bin/fig08_apix_large.rs

crates/bench/src/bin/fig08_apix_large.rs:
