/root/repo/target/release/deps/ablation_objective-e430d20009ea646f.d: crates/bench/src/bin/ablation_objective.rs

/root/repo/target/release/deps/ablation_objective-e430d20009ea646f: crates/bench/src/bin/ablation_objective.rs

crates/bench/src/bin/ablation_objective.rs:
