/root/repo/target/release/deps/all_figures-dceb00e881a86cb7.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-dceb00e881a86cb7: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
