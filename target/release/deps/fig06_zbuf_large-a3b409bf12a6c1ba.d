/root/repo/target/release/deps/fig06_zbuf_large-a3b409bf12a6c1ba.d: crates/bench/src/bin/fig06_zbuf_large.rs

/root/repo/target/release/deps/fig06_zbuf_large-a3b409bf12a6c1ba: crates/bench/src/bin/fig06_zbuf_large.rs

crates/bench/src/bin/fig06_zbuf_large.rs:
