/root/repo/target/release/deps/fig12_vmscope_large-b4f79a6aecea46c6.d: crates/bench/src/bin/fig12_vmscope_large.rs

/root/repo/target/release/deps/fig12_vmscope_large-b4f79a6aecea46c6: crates/bench/src/bin/fig12_vmscope_large.rs

crates/bench/src/bin/fig12_vmscope_large.rs:
