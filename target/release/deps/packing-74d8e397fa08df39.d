/root/repo/target/release/deps/packing-74d8e397fa08df39.d: crates/bench/benches/packing.rs

/root/repo/target/release/deps/packing-74d8e397fa08df39: crates/bench/benches/packing.rs

crates/bench/benches/packing.rs:
