/root/repo/target/release/deps/fig09_knn_k3-cf9f50d45e22a3b0.d: crates/bench/src/bin/fig09_knn_k3.rs

/root/repo/target/release/deps/fig09_knn_k3-cf9f50d45e22a3b0: crates/bench/src/bin/fig09_knn_k3.rs

crates/bench/src/bin/fig09_knn_k3.rs:
