/root/repo/target/release/deps/cgp_bench-b863306f47f662bd.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcgp_bench-b863306f47f662bd.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcgp_bench-b863306f47f662bd.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
