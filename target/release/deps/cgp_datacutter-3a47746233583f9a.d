/root/repo/target/release/deps/cgp_datacutter-3a47746233583f9a.d: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

/root/repo/target/release/deps/libcgp_datacutter-3a47746233583f9a.rlib: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

/root/repo/target/release/deps/libcgp_datacutter-3a47746233583f9a.rmeta: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

crates/datacutter/src/lib.rs:
crates/datacutter/src/buffer.rs:
crates/datacutter/src/channel.rs:
crates/datacutter/src/error.rs:
crates/datacutter/src/exec.rs:
crates/datacutter/src/filter.rs:
crates/datacutter/src/placement.rs:
crates/datacutter/src/stream.rs:
