/root/repo/target/release/deps/cgp_apps-001b2d59fc58921e.d: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

/root/repo/target/release/deps/libcgp_apps-001b2d59fc58921e.rlib: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

/root/repo/target/release/deps/libcgp_apps-001b2d59fc58921e.rmeta: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

crates/apps/src/lib.rs:
crates/apps/src/dialect.rs:
crates/apps/src/isosurface/mod.rs:
crates/apps/src/isosurface/dataset.rs:
crates/apps/src/isosurface/march.rs:
crates/apps/src/isosurface/pipelines.rs:
crates/apps/src/isosurface/render.rs:
crates/apps/src/knn.rs:
crates/apps/src/profile.rs:
crates/apps/src/vmscope.rs:
