/root/repo/target/release/deps/ablation_disk-07642f3d905da420.d: crates/bench/src/bin/ablation_disk.rs

/root/repo/target/release/deps/ablation_disk-07642f3d905da420: crates/bench/src/bin/ablation_disk.rs

crates/bench/src/bin/ablation_disk.rs:
