/root/repo/target/release/deps/ablation_adaptive-3ac6d3a0eb622ca4.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/release/deps/ablation_adaptive-3ac6d3a0eb622ca4: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:
