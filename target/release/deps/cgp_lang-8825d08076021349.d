/root/repo/target/release/deps/cgp_lang-8825d08076021349.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/interp.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/span.rs crates/lang/src/symbols.rs crates/lang/src/token.rs crates/lang/src/types.rs crates/lang/src/value.rs

/root/repo/target/release/deps/libcgp_lang-8825d08076021349.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/interp.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/span.rs crates/lang/src/symbols.rs crates/lang/src/token.rs crates/lang/src/types.rs crates/lang/src/value.rs

/root/repo/target/release/deps/libcgp_lang-8825d08076021349.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/interp.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/span.rs crates/lang/src/symbols.rs crates/lang/src/token.rs crates/lang/src/types.rs crates/lang/src/value.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/interp.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/span.rs:
crates/lang/src/symbols.rs:
crates/lang/src/token.rs:
crates/lang/src/types.rs:
crates/lang/src/value.rs:
