/root/repo/target/release/deps/cgp_core-f486a14efdafb197.d: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libcgp_core-f486a14efdafb197.rlib: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libcgp_core-f486a14efdafb197.rmeta: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/codec.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/sim.rs:
