/root/repo/target/debug/examples/observability-411f5415160a4d80.d: crates/bench/examples/observability.rs

/root/repo/target/debug/examples/observability-411f5415160a4d80: crates/bench/examples/observability.rs

crates/bench/examples/observability.rs:
