/root/repo/target/debug/examples/custom_pipeline-4693d2bf5c6ef24e.d: crates/core/../../examples/custom_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_pipeline-4693d2bf5c6ef24e.rmeta: crates/core/../../examples/custom_pipeline.rs Cargo.toml

crates/core/../../examples/custom_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
