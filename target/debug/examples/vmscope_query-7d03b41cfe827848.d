/root/repo/target/debug/examples/vmscope_query-7d03b41cfe827848.d: crates/core/../../examples/vmscope_query.rs Cargo.toml

/root/repo/target/debug/examples/libvmscope_query-7d03b41cfe827848.rmeta: crates/core/../../examples/vmscope_query.rs Cargo.toml

crates/core/../../examples/vmscope_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
