/root/repo/target/debug/examples/custom_pipeline-1b928ca797d3145b.d: crates/core/../../examples/custom_pipeline.rs

/root/repo/target/debug/examples/custom_pipeline-1b928ca797d3145b: crates/core/../../examples/custom_pipeline.rs

crates/core/../../examples/custom_pipeline.rs:
