/root/repo/target/debug/examples/quickstart-8c69b0e2fa8895aa.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8c69b0e2fa8895aa: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
