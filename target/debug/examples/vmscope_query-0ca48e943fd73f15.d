/root/repo/target/debug/examples/vmscope_query-0ca48e943fd73f15.d: crates/core/../../examples/vmscope_query.rs

/root/repo/target/debug/examples/vmscope_query-0ca48e943fd73f15: crates/core/../../examples/vmscope_query.rs

crates/core/../../examples/vmscope_query.rs:
