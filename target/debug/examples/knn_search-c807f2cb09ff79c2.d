/root/repo/target/debug/examples/knn_search-c807f2cb09ff79c2.d: crates/core/../../examples/knn_search.rs

/root/repo/target/debug/examples/knn_search-c807f2cb09ff79c2: crates/core/../../examples/knn_search.rs

crates/core/../../examples/knn_search.rs:
