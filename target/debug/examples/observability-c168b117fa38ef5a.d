/root/repo/target/debug/examples/observability-c168b117fa38ef5a.d: crates/bench/examples/observability.rs Cargo.toml

/root/repo/target/debug/examples/libobservability-c168b117fa38ef5a.rmeta: crates/bench/examples/observability.rs Cargo.toml

crates/bench/examples/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
