/root/repo/target/debug/examples/knn_search-fe3c5490d75f7355.d: crates/core/../../examples/knn_search.rs Cargo.toml

/root/repo/target/debug/examples/libknn_search-fe3c5490d75f7355.rmeta: crates/core/../../examples/knn_search.rs Cargo.toml

crates/core/../../examples/knn_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
