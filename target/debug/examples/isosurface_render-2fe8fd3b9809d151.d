/root/repo/target/debug/examples/isosurface_render-2fe8fd3b9809d151.d: crates/core/../../examples/isosurface_render.rs Cargo.toml

/root/repo/target/debug/examples/libisosurface_render-2fe8fd3b9809d151.rmeta: crates/core/../../examples/isosurface_render.rs Cargo.toml

crates/core/../../examples/isosurface_render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
