/root/repo/target/debug/examples/quickstart-d8a7e7a16e0826e2.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d8a7e7a16e0826e2.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
