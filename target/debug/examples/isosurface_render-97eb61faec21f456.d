/root/repo/target/debug/examples/isosurface_render-97eb61faec21f456.d: crates/core/../../examples/isosurface_render.rs

/root/repo/target/debug/examples/isosurface_render-97eb61faec21f456: crates/core/../../examples/isosurface_render.rs

crates/core/../../examples/isosurface_render.rs:
