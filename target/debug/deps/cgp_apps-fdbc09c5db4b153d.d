/root/repo/target/debug/deps/cgp_apps-fdbc09c5db4b153d.d: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

/root/repo/target/debug/deps/libcgp_apps-fdbc09c5db4b153d.rlib: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

/root/repo/target/debug/deps/libcgp_apps-fdbc09c5db4b153d.rmeta: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

crates/apps/src/lib.rs:
crates/apps/src/dialect.rs:
crates/apps/src/isosurface/mod.rs:
crates/apps/src/isosurface/dataset.rs:
crates/apps/src/isosurface/march.rs:
crates/apps/src/isosurface/pipelines.rs:
crates/apps/src/isosurface/render.rs:
crates/apps/src/knn.rs:
crates/apps/src/profile.rs:
crates/apps/src/vmscope.rs:
