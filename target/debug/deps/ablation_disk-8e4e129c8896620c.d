/root/repo/target/debug/deps/ablation_disk-8e4e129c8896620c.d: crates/bench/src/bin/ablation_disk.rs Cargo.toml

/root/repo/target/debug/deps/libablation_disk-8e4e129c8896620c.rmeta: crates/bench/src/bin/ablation_disk.rs Cargo.toml

crates/bench/src/bin/ablation_disk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
