/root/repo/target/debug/deps/cgp_datacutter-1d3a02a111ad9e51.d: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

/root/repo/target/debug/deps/cgp_datacutter-1d3a02a111ad9e51: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

crates/datacutter/src/lib.rs:
crates/datacutter/src/buffer.rs:
crates/datacutter/src/channel.rs:
crates/datacutter/src/error.rs:
crates/datacutter/src/exec.rs:
crates/datacutter/src/filter.rs:
crates/datacutter/src/placement.rs:
crates/datacutter/src/stream.rs:
