/root/repo/target/debug/deps/analysis-4c7aa916f1ae5cc0.d: crates/bench/benches/analysis.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis-4c7aa916f1ae5cc0.rmeta: crates/bench/benches/analysis.rs Cargo.toml

crates/bench/benches/analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
