/root/repo/target/debug/deps/fig08_apix_large-2a4300908b2da8ee.d: crates/bench/src/bin/fig08_apix_large.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_apix_large-2a4300908b2da8ee.rmeta: crates/bench/src/bin/fig08_apix_large.rs Cargo.toml

crates/bench/src/bin/fig08_apix_large.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
