/root/repo/target/debug/deps/properties-95d575c20971e33f.d: crates/apps/tests/properties.rs

/root/repo/target/debug/deps/properties-95d575c20971e33f: crates/apps/tests/properties.rs

crates/apps/tests/properties.rs:
