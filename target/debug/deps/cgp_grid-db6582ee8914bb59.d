/root/repo/target/debug/deps/cgp_grid-db6582ee8914bb59.d: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

/root/repo/target/debug/deps/libcgp_grid-db6582ee8914bb59.rlib: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

/root/repo/target/debug/deps/libcgp_grid-db6582ee8914bb59.rmeta: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

crates/grid/src/lib.rs:
crates/grid/src/adaptive.rs:
crates/grid/src/config.rs:
crates/grid/src/sim.rs:
