/root/repo/target/debug/deps/fig12_vmscope_large-30dcd912b1fb53a1.d: crates/bench/src/bin/fig12_vmscope_large.rs

/root/repo/target/debug/deps/fig12_vmscope_large-30dcd912b1fb53a1: crates/bench/src/bin/fig12_vmscope_large.rs

crates/bench/src/bin/fig12_vmscope_large.rs:
