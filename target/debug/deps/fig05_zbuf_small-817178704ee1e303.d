/root/repo/target/debug/deps/fig05_zbuf_small-817178704ee1e303.d: crates/bench/src/bin/fig05_zbuf_small.rs

/root/repo/target/debug/deps/fig05_zbuf_small-817178704ee1e303: crates/bench/src/bin/fig05_zbuf_small.rs

crates/bench/src/bin/fig05_zbuf_small.rs:
