/root/repo/target/debug/deps/cgp_datacutter-6474e32524dfa618.d: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_datacutter-6474e32524dfa618.rmeta: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs Cargo.toml

crates/datacutter/src/lib.rs:
crates/datacutter/src/buffer.rs:
crates/datacutter/src/channel.rs:
crates/datacutter/src/error.rs:
crates/datacutter/src/exec.rs:
crates/datacutter/src/filter.rs:
crates/datacutter/src/placement.rs:
crates/datacutter/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
