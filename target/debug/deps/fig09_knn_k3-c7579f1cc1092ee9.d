/root/repo/target/debug/deps/fig09_knn_k3-c7579f1cc1092ee9.d: crates/bench/src/bin/fig09_knn_k3.rs

/root/repo/target/debug/deps/fig09_knn_k3-c7579f1cc1092ee9: crates/bench/src/bin/fig09_knn_k3.rs

crates/bench/src/bin/fig09_knn_k3.rs:
