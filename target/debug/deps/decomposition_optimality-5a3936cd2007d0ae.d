/root/repo/target/debug/deps/decomposition_optimality-5a3936cd2007d0ae.d: crates/core/../../tests/decomposition_optimality.rs Cargo.toml

/root/repo/target/debug/deps/libdecomposition_optimality-5a3936cd2007d0ae.rmeta: crates/core/../../tests/decomposition_optimality.rs Cargo.toml

crates/core/../../tests/decomposition_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
