/root/repo/target/debug/deps/costmodel-a1b0472e057a19c7.d: crates/bench/benches/costmodel.rs

/root/repo/target/debug/deps/costmodel-a1b0472e057a19c7: crates/bench/benches/costmodel.rs

crates/bench/benches/costmodel.rs:
