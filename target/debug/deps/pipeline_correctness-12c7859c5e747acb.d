/root/repo/target/debug/deps/pipeline_correctness-12c7859c5e747acb.d: crates/core/../../tests/pipeline_correctness.rs

/root/repo/target/debug/deps/pipeline_correctness-12c7859c5e747acb: crates/core/../../tests/pipeline_correctness.rs

crates/core/../../tests/pipeline_correctness.rs:
