/root/repo/target/debug/deps/ablation_disk-3b26d19ac7af9e54.d: crates/bench/src/bin/ablation_disk.rs

/root/repo/target/debug/deps/ablation_disk-3b26d19ac7af9e54: crates/bench/src/bin/ablation_disk.rs

crates/bench/src/bin/ablation_disk.rs:
