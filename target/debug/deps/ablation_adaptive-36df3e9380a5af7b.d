/root/repo/target/debug/deps/ablation_adaptive-36df3e9380a5af7b.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/debug/deps/ablation_adaptive-36df3e9380a5af7b: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:
