/root/repo/target/debug/deps/cgp_bench-05397e20166c060c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_bench-05397e20166c060c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
