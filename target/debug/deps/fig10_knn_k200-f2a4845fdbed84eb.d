/root/repo/target/debug/deps/fig10_knn_k200-f2a4845fdbed84eb.d: crates/bench/src/bin/fig10_knn_k200.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_knn_k200-f2a4845fdbed84eb.rmeta: crates/bench/src/bin/fig10_knn_k200.rs Cargo.toml

crates/bench/src/bin/fig10_knn_k200.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
