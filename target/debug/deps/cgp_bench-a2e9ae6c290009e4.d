/root/repo/target/debug/deps/cgp_bench-a2e9ae6c290009e4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcgp_bench-a2e9ae6c290009e4.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcgp_bench-a2e9ae6c290009e4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
