/root/repo/target/debug/deps/costmodel-7643507c11f79ee5.d: crates/bench/benches/costmodel.rs Cargo.toml

/root/repo/target/debug/deps/libcostmodel-7643507c11f79ee5.rmeta: crates/bench/benches/costmodel.rs Cargo.toml

crates/bench/benches/costmodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
