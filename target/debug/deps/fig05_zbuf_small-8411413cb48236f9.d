/root/repo/target/debug/deps/fig05_zbuf_small-8411413cb48236f9.d: crates/bench/src/bin/fig05_zbuf_small.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_zbuf_small-8411413cb48236f9.rmeta: crates/bench/src/bin/fig05_zbuf_small.rs Cargo.toml

crates/bench/src/bin/fig05_zbuf_small.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
