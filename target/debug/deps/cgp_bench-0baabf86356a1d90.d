/root/repo/target/debug/deps/cgp_bench-0baabf86356a1d90.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_bench-0baabf86356a1d90.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
