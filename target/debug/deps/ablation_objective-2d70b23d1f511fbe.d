/root/repo/target/debug/deps/ablation_objective-2d70b23d1f511fbe.d: crates/bench/src/bin/ablation_objective.rs Cargo.toml

/root/repo/target/debug/deps/libablation_objective-2d70b23d1f511fbe.rmeta: crates/bench/src/bin/ablation_objective.rs Cargo.toml

crates/bench/src/bin/ablation_objective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
