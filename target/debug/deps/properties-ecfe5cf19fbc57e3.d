/root/repo/target/debug/deps/properties-ecfe5cf19fbc57e3.d: crates/lang/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ecfe5cf19fbc57e3.rmeta: crates/lang/tests/properties.rs Cargo.toml

crates/lang/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
