/root/repo/target/debug/deps/errors-6876a7edb4902a6c.d: crates/compiler/tests/errors.rs

/root/repo/target/debug/deps/errors-6876a7edb4902a6c: crates/compiler/tests/errors.rs

crates/compiler/tests/errors.rs:
