/root/repo/target/debug/deps/ablation_packet_size-a7043ce26a5700bc.d: crates/bench/src/bin/ablation_packet_size.rs

/root/repo/target/debug/deps/ablation_packet_size-a7043ce26a5700bc: crates/bench/src/bin/ablation_packet_size.rs

crates/bench/src/bin/ablation_packet_size.rs:
