/root/repo/target/debug/deps/cgp_compiler-6ab6685904ffef4b.d: crates/compiler/src/lib.rs crates/compiler/src/codegen.rs crates/compiler/src/cost.rs crates/compiler/src/decompose.rs crates/compiler/src/driver.rs crates/compiler/src/error.rs crates/compiler/src/gencons.rs crates/compiler/src/graph.rs crates/compiler/src/normalize.rs crates/compiler/src/packing.rs crates/compiler/src/place.rs crates/compiler/src/report.rs crates/compiler/src/reqcomm.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_compiler-6ab6685904ffef4b.rmeta: crates/compiler/src/lib.rs crates/compiler/src/codegen.rs crates/compiler/src/cost.rs crates/compiler/src/decompose.rs crates/compiler/src/driver.rs crates/compiler/src/error.rs crates/compiler/src/gencons.rs crates/compiler/src/graph.rs crates/compiler/src/normalize.rs crates/compiler/src/packing.rs crates/compiler/src/place.rs crates/compiler/src/report.rs crates/compiler/src/reqcomm.rs Cargo.toml

crates/compiler/src/lib.rs:
crates/compiler/src/codegen.rs:
crates/compiler/src/cost.rs:
crates/compiler/src/decompose.rs:
crates/compiler/src/driver.rs:
crates/compiler/src/error.rs:
crates/compiler/src/gencons.rs:
crates/compiler/src/graph.rs:
crates/compiler/src/normalize.rs:
crates/compiler/src/packing.rs:
crates/compiler/src/place.rs:
crates/compiler/src/report.rs:
crates/compiler/src/reqcomm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
