/root/repo/target/debug/deps/properties-df9d6beb3a944961.d: crates/compiler/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-df9d6beb3a944961.rmeta: crates/compiler/tests/properties.rs Cargo.toml

crates/compiler/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
