/root/repo/target/debug/deps/fig07_apix_small-131fad711e187e2d.d: crates/bench/src/bin/fig07_apix_small.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_apix_small-131fad711e187e2d.rmeta: crates/bench/src/bin/fig07_apix_small.rs Cargo.toml

crates/bench/src/bin/fig07_apix_small.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
