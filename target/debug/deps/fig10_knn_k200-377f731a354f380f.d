/root/repo/target/debug/deps/fig10_knn_k200-377f731a354f380f.d: crates/bench/src/bin/fig10_knn_k200.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_knn_k200-377f731a354f380f.rmeta: crates/bench/src/bin/fig10_knn_k200.rs Cargo.toml

crates/bench/src/bin/fig10_knn_k200.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
