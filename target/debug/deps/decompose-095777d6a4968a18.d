/root/repo/target/debug/deps/decompose-095777d6a4968a18.d: crates/bench/benches/decompose.rs Cargo.toml

/root/repo/target/debug/deps/libdecompose-095777d6a4968a18.rmeta: crates/bench/benches/decompose.rs Cargo.toml

crates/bench/benches/decompose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
