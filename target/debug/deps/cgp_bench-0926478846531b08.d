/root/repo/target/debug/deps/cgp_bench-0926478846531b08.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/cgp_bench-0926478846531b08: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
