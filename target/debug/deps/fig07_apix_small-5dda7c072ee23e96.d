/root/repo/target/debug/deps/fig07_apix_small-5dda7c072ee23e96.d: crates/bench/src/bin/fig07_apix_small.rs

/root/repo/target/debug/deps/fig07_apix_small-5dda7c072ee23e96: crates/bench/src/bin/fig07_apix_small.rs

crates/bench/src/bin/fig07_apix_small.rs:
