/root/repo/target/debug/deps/packing-e1b2e44cff20eff0.d: crates/bench/benches/packing.rs

/root/repo/target/debug/deps/packing-e1b2e44cff20eff0: crates/bench/benches/packing.rs

crates/bench/benches/packing.rs:
