/root/repo/target/debug/deps/ablation_adaptive-315f9f9ac725c1c9.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/debug/deps/ablation_adaptive-315f9f9ac725c1c9: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:
