/root/repo/target/debug/deps/ablation_objective-291926aa85584454.d: crates/bench/src/bin/ablation_objective.rs

/root/repo/target/debug/deps/ablation_objective-291926aa85584454: crates/bench/src/bin/ablation_objective.rs

crates/bench/src/bin/ablation_objective.rs:
