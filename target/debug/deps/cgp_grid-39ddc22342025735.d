/root/repo/target/debug/deps/cgp_grid-39ddc22342025735.d: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

/root/repo/target/debug/deps/cgp_grid-39ddc22342025735: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs

crates/grid/src/lib.rs:
crates/grid/src/adaptive.rs:
crates/grid/src/config.rs:
crates/grid/src/sim.rs:
