/root/repo/target/debug/deps/analysis-fcc589cd1fae3483.d: crates/bench/benches/analysis.rs

/root/repo/target/debug/deps/analysis-fcc589cd1fae3483: crates/bench/benches/analysis.rs

crates/bench/benches/analysis.rs:
