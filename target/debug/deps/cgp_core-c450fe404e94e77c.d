/root/repo/target/debug/deps/cgp_core-c450fe404e94e77c.d: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libcgp_core-c450fe404e94e77c.rlib: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libcgp_core-c450fe404e94e77c.rmeta: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/codec.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/sim.rs:
