/root/repo/target/debug/deps/packing-93dfda313758abd3.d: crates/bench/benches/packing.rs Cargo.toml

/root/repo/target/debug/deps/libpacking-93dfda313758abd3.rmeta: crates/bench/benches/packing.rs Cargo.toml

crates/bench/benches/packing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
