/root/repo/target/debug/deps/fig08_apix_large-82ed84e293870138.d: crates/bench/src/bin/fig08_apix_large.rs

/root/repo/target/debug/deps/fig08_apix_large-82ed84e293870138: crates/bench/src/bin/fig08_apix_large.rs

crates/bench/src/bin/fig08_apix_large.rs:
