/root/repo/target/debug/deps/fig06_zbuf_large-e4a9473e5d28f553.d: crates/bench/src/bin/fig06_zbuf_large.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_zbuf_large-e4a9473e5d28f553.rmeta: crates/bench/src/bin/fig06_zbuf_large.rs Cargo.toml

crates/bench/src/bin/fig06_zbuf_large.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
