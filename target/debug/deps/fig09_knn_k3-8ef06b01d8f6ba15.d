/root/repo/target/debug/deps/fig09_knn_k3-8ef06b01d8f6ba15.d: crates/bench/src/bin/fig09_knn_k3.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_knn_k3-8ef06b01d8f6ba15.rmeta: crates/bench/src/bin/fig09_knn_k3.rs Cargo.toml

crates/bench/src/bin/fig09_knn_k3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
