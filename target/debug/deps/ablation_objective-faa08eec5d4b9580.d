/root/repo/target/debug/deps/ablation_objective-faa08eec5d4b9580.d: crates/bench/src/bin/ablation_objective.rs Cargo.toml

/root/repo/target/debug/deps/libablation_objective-faa08eec5d4b9580.rmeta: crates/bench/src/bin/ablation_objective.rs Cargo.toml

crates/bench/src/bin/ablation_objective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
