/root/repo/target/debug/deps/fig10_knn_k200-b76297536a3ac20e.d: crates/bench/src/bin/fig10_knn_k200.rs

/root/repo/target/debug/deps/fig10_knn_k200-b76297536a3ac20e: crates/bench/src/bin/fig10_knn_k200.rs

crates/bench/src/bin/fig10_knn_k200.rs:
