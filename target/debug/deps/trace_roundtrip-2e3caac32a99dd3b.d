/root/repo/target/debug/deps/trace_roundtrip-2e3caac32a99dd3b.d: crates/datacutter/tests/trace_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_roundtrip-2e3caac32a99dd3b.rmeta: crates/datacutter/tests/trace_roundtrip.rs Cargo.toml

crates/datacutter/tests/trace_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
