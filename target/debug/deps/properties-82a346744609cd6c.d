/root/repo/target/debug/deps/properties-82a346744609cd6c.d: crates/lang/tests/properties.rs

/root/repo/target/debug/deps/properties-82a346744609cd6c: crates/lang/tests/properties.rs

crates/lang/tests/properties.rs:
