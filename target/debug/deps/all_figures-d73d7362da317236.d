/root/repo/target/debug/deps/all_figures-d73d7362da317236.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-d73d7362da317236.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
