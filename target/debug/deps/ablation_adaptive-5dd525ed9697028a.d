/root/repo/target/debug/deps/ablation_adaptive-5dd525ed9697028a.d: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libablation_adaptive-5dd525ed9697028a.rmeta: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

crates/bench/src/bin/ablation_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
