/root/repo/target/debug/deps/end_to_end-74958af57bf3ed23.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-74958af57bf3ed23: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
