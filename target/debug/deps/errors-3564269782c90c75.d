/root/repo/target/debug/deps/errors-3564269782c90c75.d: crates/compiler/tests/errors.rs Cargo.toml

/root/repo/target/debug/deps/liberrors-3564269782c90c75.rmeta: crates/compiler/tests/errors.rs Cargo.toml

crates/compiler/tests/errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
