/root/repo/target/debug/deps/cgp_datacutter-cff3acc14e64f158.d: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

/root/repo/target/debug/deps/libcgp_datacutter-cff3acc14e64f158.rlib: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

/root/repo/target/debug/deps/libcgp_datacutter-cff3acc14e64f158.rmeta: crates/datacutter/src/lib.rs crates/datacutter/src/buffer.rs crates/datacutter/src/channel.rs crates/datacutter/src/error.rs crates/datacutter/src/exec.rs crates/datacutter/src/filter.rs crates/datacutter/src/placement.rs crates/datacutter/src/stream.rs

crates/datacutter/src/lib.rs:
crates/datacutter/src/buffer.rs:
crates/datacutter/src/channel.rs:
crates/datacutter/src/error.rs:
crates/datacutter/src/exec.rs:
crates/datacutter/src/filter.rs:
crates/datacutter/src/placement.rs:
crates/datacutter/src/stream.rs:
