/root/repo/target/debug/deps/ablation_packet_size-a155159319caf3c8.d: crates/bench/src/bin/ablation_packet_size.rs

/root/repo/target/debug/deps/ablation_packet_size-a155159319caf3c8: crates/bench/src/bin/ablation_packet_size.rs

crates/bench/src/bin/ablation_packet_size.rs:
