/root/repo/target/debug/deps/all_figures-bf6a5f4d379ae391.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-bf6a5f4d379ae391.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
