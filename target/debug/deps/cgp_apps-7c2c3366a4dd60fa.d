/root/repo/target/debug/deps/cgp_apps-7c2c3366a4dd60fa.d: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_apps-7c2c3366a4dd60fa.rmeta: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/dialect.rs:
crates/apps/src/isosurface/mod.rs:
crates/apps/src/isosurface/dataset.rs:
crates/apps/src/isosurface/march.rs:
crates/apps/src/isosurface/pipelines.rs:
crates/apps/src/isosurface/render.rs:
crates/apps/src/knn.rs:
crates/apps/src/profile.rs:
crates/apps/src/vmscope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
