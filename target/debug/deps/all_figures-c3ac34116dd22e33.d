/root/repo/target/debug/deps/all_figures-c3ac34116dd22e33.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-c3ac34116dd22e33: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
