/root/repo/target/debug/deps/cgp_lang-58e9eadacb399a77.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/interp.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/span.rs crates/lang/src/symbols.rs crates/lang/src/token.rs crates/lang/src/types.rs crates/lang/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_lang-58e9eadacb399a77.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/interp.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/span.rs crates/lang/src/symbols.rs crates/lang/src/token.rs crates/lang/src/types.rs crates/lang/src/value.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/interp.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/span.rs:
crates/lang/src/symbols.rs:
crates/lang/src/token.rs:
crates/lang/src/types.rs:
crates/lang/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
