/root/repo/target/debug/deps/fig07_apix_small-ece085af9dee5507.d: crates/bench/src/bin/fig07_apix_small.rs

/root/repo/target/debug/deps/fig07_apix_small-ece085af9dee5507: crates/bench/src/bin/fig07_apix_small.rs

crates/bench/src/bin/fig07_apix_small.rs:
