/root/repo/target/debug/deps/fig11_vmscope_small-3846d76a3f8a58a7.d: crates/bench/src/bin/fig11_vmscope_small.rs

/root/repo/target/debug/deps/fig11_vmscope_small-3846d76a3f8a58a7: crates/bench/src/bin/fig11_vmscope_small.rs

crates/bench/src/bin/fig11_vmscope_small.rs:
