/root/repo/target/debug/deps/cost_model_validation-950e3a7038b08930.d: crates/core/../../tests/cost_model_validation.rs

/root/repo/target/debug/deps/cost_model_validation-950e3a7038b08930: crates/core/../../tests/cost_model_validation.rs

crates/core/../../tests/cost_model_validation.rs:
