/root/repo/target/debug/deps/ablation_packet_size-3363810a4a19ffd3.d: crates/bench/src/bin/ablation_packet_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_packet_size-3363810a4a19ffd3.rmeta: crates/bench/src/bin/ablation_packet_size.rs Cargo.toml

crates/bench/src/bin/ablation_packet_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
