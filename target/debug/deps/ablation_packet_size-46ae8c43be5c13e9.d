/root/repo/target/debug/deps/ablation_packet_size-46ae8c43be5c13e9.d: crates/bench/src/bin/ablation_packet_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_packet_size-46ae8c43be5c13e9.rmeta: crates/bench/src/bin/ablation_packet_size.rs Cargo.toml

crates/bench/src/bin/ablation_packet_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
