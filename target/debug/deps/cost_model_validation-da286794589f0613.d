/root/repo/target/debug/deps/cost_model_validation-da286794589f0613.d: crates/core/../../tests/cost_model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcost_model_validation-da286794589f0613.rmeta: crates/core/../../tests/cost_model_validation.rs Cargo.toml

crates/core/../../tests/cost_model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
