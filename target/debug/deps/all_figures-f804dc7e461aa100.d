/root/repo/target/debug/deps/all_figures-f804dc7e461aa100.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-f804dc7e461aa100: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
