/root/repo/target/debug/deps/fig10_knn_k200-95accc5b50a2b169.d: crates/bench/src/bin/fig10_knn_k200.rs

/root/repo/target/debug/deps/fig10_knn_k200-95accc5b50a2b169: crates/bench/src/bin/fig10_knn_k200.rs

crates/bench/src/bin/fig10_knn_k200.rs:
