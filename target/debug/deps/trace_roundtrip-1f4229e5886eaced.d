/root/repo/target/debug/deps/trace_roundtrip-1f4229e5886eaced.d: crates/datacutter/tests/trace_roundtrip.rs

/root/repo/target/debug/deps/trace_roundtrip-1f4229e5886eaced: crates/datacutter/tests/trace_roundtrip.rs

crates/datacutter/tests/trace_roundtrip.rs:
