/root/repo/target/debug/deps/cgp_apps-bb6dabb81c505c2e.d: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_apps-bb6dabb81c505c2e.rmeta: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/dialect.rs:
crates/apps/src/isosurface/mod.rs:
crates/apps/src/isosurface/dataset.rs:
crates/apps/src/isosurface/march.rs:
crates/apps/src/isosurface/pipelines.rs:
crates/apps/src/isosurface/render.rs:
crates/apps/src/knn.rs:
crates/apps/src/profile.rs:
crates/apps/src/vmscope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
