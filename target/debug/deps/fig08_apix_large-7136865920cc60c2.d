/root/repo/target/debug/deps/fig08_apix_large-7136865920cc60c2.d: crates/bench/src/bin/fig08_apix_large.rs

/root/repo/target/debug/deps/fig08_apix_large-7136865920cc60c2: crates/bench/src/bin/fig08_apix_large.rs

crates/bench/src/bin/fig08_apix_large.rs:
