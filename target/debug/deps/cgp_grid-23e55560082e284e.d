/root/repo/target/debug/deps/cgp_grid-23e55560082e284e.d: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_grid-23e55560082e284e.rmeta: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs Cargo.toml

crates/grid/src/lib.rs:
crates/grid/src/adaptive.rs:
crates/grid/src/config.rs:
crates/grid/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
