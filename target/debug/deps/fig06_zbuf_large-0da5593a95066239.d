/root/repo/target/debug/deps/fig06_zbuf_large-0da5593a95066239.d: crates/bench/src/bin/fig06_zbuf_large.rs

/root/repo/target/debug/deps/fig06_zbuf_large-0da5593a95066239: crates/bench/src/bin/fig06_zbuf_large.rs

crates/bench/src/bin/fig06_zbuf_large.rs:
