/root/repo/target/debug/deps/fig08_apix_large-fd729cc24e1670c0.d: crates/bench/src/bin/fig08_apix_large.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_apix_large-fd729cc24e1670c0.rmeta: crates/bench/src/bin/fig08_apix_large.rs Cargo.toml

crates/bench/src/bin/fig08_apix_large.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
