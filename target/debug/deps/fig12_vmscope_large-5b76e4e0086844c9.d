/root/repo/target/debug/deps/fig12_vmscope_large-5b76e4e0086844c9.d: crates/bench/src/bin/fig12_vmscope_large.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_vmscope_large-5b76e4e0086844c9.rmeta: crates/bench/src/bin/fig12_vmscope_large.rs Cargo.toml

crates/bench/src/bin/fig12_vmscope_large.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
