/root/repo/target/debug/deps/fig11_vmscope_small-fcff3e0bb3281336.d: crates/bench/src/bin/fig11_vmscope_small.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_vmscope_small-fcff3e0bb3281336.rmeta: crates/bench/src/bin/fig11_vmscope_small.rs Cargo.toml

crates/bench/src/bin/fig11_vmscope_small.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
