/root/repo/target/debug/deps/properties-37460dd7405f4d31.d: crates/compiler/tests/properties.rs

/root/repo/target/debug/deps/properties-37460dd7405f4d31: crates/compiler/tests/properties.rs

crates/compiler/tests/properties.rs:
