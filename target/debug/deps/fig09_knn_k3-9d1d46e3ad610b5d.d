/root/repo/target/debug/deps/fig09_knn_k3-9d1d46e3ad610b5d.d: crates/bench/src/bin/fig09_knn_k3.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_knn_k3-9d1d46e3ad610b5d.rmeta: crates/bench/src/bin/fig09_knn_k3.rs Cargo.toml

crates/bench/src/bin/fig09_knn_k3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
