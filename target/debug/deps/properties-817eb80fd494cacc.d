/root/repo/target/debug/deps/properties-817eb80fd494cacc.d: crates/grid/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-817eb80fd494cacc.rmeta: crates/grid/tests/properties.rs Cargo.toml

crates/grid/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
