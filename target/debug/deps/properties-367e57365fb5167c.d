/root/repo/target/debug/deps/properties-367e57365fb5167c.d: crates/grid/tests/properties.rs

/root/repo/target/debug/deps/properties-367e57365fb5167c: crates/grid/tests/properties.rs

crates/grid/tests/properties.rs:
