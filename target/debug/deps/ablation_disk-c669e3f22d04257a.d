/root/repo/target/debug/deps/ablation_disk-c669e3f22d04257a.d: crates/bench/src/bin/ablation_disk.rs

/root/repo/target/debug/deps/ablation_disk-c669e3f22d04257a: crates/bench/src/bin/ablation_disk.rs

crates/bench/src/bin/ablation_disk.rs:
