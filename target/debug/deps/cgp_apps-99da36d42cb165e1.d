/root/repo/target/debug/deps/cgp_apps-99da36d42cb165e1.d: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

/root/repo/target/debug/deps/cgp_apps-99da36d42cb165e1: crates/apps/src/lib.rs crates/apps/src/dialect.rs crates/apps/src/isosurface/mod.rs crates/apps/src/isosurface/dataset.rs crates/apps/src/isosurface/march.rs crates/apps/src/isosurface/pipelines.rs crates/apps/src/isosurface/render.rs crates/apps/src/knn.rs crates/apps/src/profile.rs crates/apps/src/vmscope.rs

crates/apps/src/lib.rs:
crates/apps/src/dialect.rs:
crates/apps/src/isosurface/mod.rs:
crates/apps/src/isosurface/dataset.rs:
crates/apps/src/isosurface/march.rs:
crates/apps/src/isosurface/pipelines.rs:
crates/apps/src/isosurface/render.rs:
crates/apps/src/knn.rs:
crates/apps/src/profile.rs:
crates/apps/src/vmscope.rs:
