/root/repo/target/debug/deps/cgp_grid-42926221fcde25ab.d: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_grid-42926221fcde25ab.rmeta: crates/grid/src/lib.rs crates/grid/src/adaptive.rs crates/grid/src/config.rs crates/grid/src/sim.rs Cargo.toml

crates/grid/src/lib.rs:
crates/grid/src/adaptive.rs:
crates/grid/src/config.rs:
crates/grid/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
