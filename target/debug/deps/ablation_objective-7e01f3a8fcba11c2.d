/root/repo/target/debug/deps/ablation_objective-7e01f3a8fcba11c2.d: crates/bench/src/bin/ablation_objective.rs

/root/repo/target/debug/deps/ablation_objective-7e01f3a8fcba11c2: crates/bench/src/bin/ablation_objective.rs

crates/bench/src/bin/ablation_objective.rs:
