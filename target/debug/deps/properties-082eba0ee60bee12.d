/root/repo/target/debug/deps/properties-082eba0ee60bee12.d: crates/apps/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-082eba0ee60bee12.rmeta: crates/apps/tests/properties.rs Cargo.toml

crates/apps/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
