/root/repo/target/debug/deps/fig12_vmscope_large-fc6f753d6451ebd9.d: crates/bench/src/bin/fig12_vmscope_large.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_vmscope_large-fc6f753d6451ebd9.rmeta: crates/bench/src/bin/fig12_vmscope_large.rs Cargo.toml

crates/bench/src/bin/fig12_vmscope_large.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
