/root/repo/target/debug/deps/cgp_compiler-96cbf375e753290c.d: crates/compiler/src/lib.rs crates/compiler/src/codegen.rs crates/compiler/src/cost.rs crates/compiler/src/decompose.rs crates/compiler/src/driver.rs crates/compiler/src/error.rs crates/compiler/src/gencons.rs crates/compiler/src/graph.rs crates/compiler/src/normalize.rs crates/compiler/src/packing.rs crates/compiler/src/place.rs crates/compiler/src/report.rs crates/compiler/src/reqcomm.rs

/root/repo/target/debug/deps/cgp_compiler-96cbf375e753290c: crates/compiler/src/lib.rs crates/compiler/src/codegen.rs crates/compiler/src/cost.rs crates/compiler/src/decompose.rs crates/compiler/src/driver.rs crates/compiler/src/error.rs crates/compiler/src/gencons.rs crates/compiler/src/graph.rs crates/compiler/src/normalize.rs crates/compiler/src/packing.rs crates/compiler/src/place.rs crates/compiler/src/report.rs crates/compiler/src/reqcomm.rs

crates/compiler/src/lib.rs:
crates/compiler/src/codegen.rs:
crates/compiler/src/cost.rs:
crates/compiler/src/decompose.rs:
crates/compiler/src/driver.rs:
crates/compiler/src/error.rs:
crates/compiler/src/gencons.rs:
crates/compiler/src/graph.rs:
crates/compiler/src/normalize.rs:
crates/compiler/src/packing.rs:
crates/compiler/src/place.rs:
crates/compiler/src/report.rs:
crates/compiler/src/reqcomm.rs:
