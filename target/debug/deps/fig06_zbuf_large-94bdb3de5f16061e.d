/root/repo/target/debug/deps/fig06_zbuf_large-94bdb3de5f16061e.d: crates/bench/src/bin/fig06_zbuf_large.rs

/root/repo/target/debug/deps/fig06_zbuf_large-94bdb3de5f16061e: crates/bench/src/bin/fig06_zbuf_large.rs

crates/bench/src/bin/fig06_zbuf_large.rs:
