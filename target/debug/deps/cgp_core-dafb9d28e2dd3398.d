/root/repo/target/debug/deps/cgp_core-dafb9d28e2dd3398.d: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_core-dafb9d28e2dd3398.rmeta: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/codec.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
