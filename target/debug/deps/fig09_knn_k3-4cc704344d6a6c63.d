/root/repo/target/debug/deps/fig09_knn_k3-4cc704344d6a6c63.d: crates/bench/src/bin/fig09_knn_k3.rs

/root/repo/target/debug/deps/fig09_knn_k3-4cc704344d6a6c63: crates/bench/src/bin/fig09_knn_k3.rs

crates/bench/src/bin/fig09_knn_k3.rs:
