/root/repo/target/debug/deps/pipeline_correctness-02e2b5345dd1a000.d: crates/core/../../tests/pipeline_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_correctness-02e2b5345dd1a000.rmeta: crates/core/../../tests/pipeline_correctness.rs Cargo.toml

crates/core/../../tests/pipeline_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
