/root/repo/target/debug/deps/fig11_vmscope_small-4a0846b1b5fb7d64.d: crates/bench/src/bin/fig11_vmscope_small.rs

/root/repo/target/debug/deps/fig11_vmscope_small-4a0846b1b5fb7d64: crates/bench/src/bin/fig11_vmscope_small.rs

crates/bench/src/bin/fig11_vmscope_small.rs:
