/root/repo/target/debug/deps/ablation_disk-d27341cd7827217e.d: crates/bench/src/bin/ablation_disk.rs Cargo.toml

/root/repo/target/debug/deps/libablation_disk-d27341cd7827217e.rmeta: crates/bench/src/bin/ablation_disk.rs Cargo.toml

crates/bench/src/bin/ablation_disk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
