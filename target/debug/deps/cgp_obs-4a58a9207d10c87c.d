/root/repo/target/debug/deps/cgp_obs-4a58a9207d10c87c.d: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/cgp_obs-4a58a9207d10c87c: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/bench.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/rng.rs:
crates/obs/src/sink.rs:
crates/obs/src/trace.rs:
