/root/repo/target/debug/deps/fig12_vmscope_large-3ca2cde2809f1008.d: crates/bench/src/bin/fig12_vmscope_large.rs

/root/repo/target/debug/deps/fig12_vmscope_large-3ca2cde2809f1008: crates/bench/src/bin/fig12_vmscope_large.rs

crates/bench/src/bin/fig12_vmscope_large.rs:
