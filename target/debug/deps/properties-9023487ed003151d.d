/root/repo/target/debug/deps/properties-9023487ed003151d.d: crates/datacutter/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9023487ed003151d.rmeta: crates/datacutter/tests/properties.rs Cargo.toml

crates/datacutter/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
