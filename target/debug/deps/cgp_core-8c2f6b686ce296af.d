/root/repo/target/debug/deps/cgp_core-8c2f6b686ce296af.d: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_core-8c2f6b686ce296af.rmeta: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/codec.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
