/root/repo/target/debug/deps/fig05_zbuf_small-8a85b23a5cf270f1.d: crates/bench/src/bin/fig05_zbuf_small.rs

/root/repo/target/debug/deps/fig05_zbuf_small-8a85b23a5cf270f1: crates/bench/src/bin/fig05_zbuf_small.rs

crates/bench/src/bin/fig05_zbuf_small.rs:
