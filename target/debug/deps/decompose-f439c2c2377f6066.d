/root/repo/target/debug/deps/decompose-f439c2c2377f6066.d: crates/bench/benches/decompose.rs

/root/repo/target/debug/deps/decompose-f439c2c2377f6066: crates/bench/benches/decompose.rs

crates/bench/benches/decompose.rs:
