/root/repo/target/debug/deps/properties-6a3b27f220987d07.d: crates/datacutter/tests/properties.rs

/root/repo/target/debug/deps/properties-6a3b27f220987d07: crates/datacutter/tests/properties.rs

crates/datacutter/tests/properties.rs:
