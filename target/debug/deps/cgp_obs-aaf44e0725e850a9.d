/root/repo/target/debug/deps/cgp_obs-aaf44e0725e850a9.d: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcgp_obs-aaf44e0725e850a9.rmeta: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/bench.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/rng.rs:
crates/obs/src/sink.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
