/root/repo/target/debug/deps/ablation_adaptive-8df4bb17b174a97a.d: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libablation_adaptive-8df4bb17b174a97a.rmeta: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

crates/bench/src/bin/ablation_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
