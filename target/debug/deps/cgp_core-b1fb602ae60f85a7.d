/root/repo/target/debug/deps/cgp_core-b1fb602ae60f85a7.d: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/cgp_core-b1fb602ae60f85a7: crates/core/src/lib.rs crates/core/src/codec.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/codec.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/sim.rs:
