/root/repo/target/debug/deps/cgp_obs-3d14609283c8f916.d: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libcgp_obs-3d14609283c8f916.rlib: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libcgp_obs-3d14609283c8f916.rmeta: crates/obs/src/lib.rs crates/obs/src/bench.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sink.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/bench.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/rng.rs:
crates/obs/src/sink.rs:
crates/obs/src/trace.rs:
