/root/repo/target/debug/deps/decomposition_optimality-2fc74901d652174a.d: crates/core/../../tests/decomposition_optimality.rs

/root/repo/target/debug/deps/decomposition_optimality-2fc74901d652174a: crates/core/../../tests/decomposition_optimality.rs

crates/core/../../tests/decomposition_optimality.rs:
