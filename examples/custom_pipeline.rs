//! Build a filter-stream pipeline directly against the DataCutter-style
//! runtime API — no compiler involved. A three-stage text pipeline with
//! transparent copies: generate lines → hash words (width 3) → aggregate.
//!
//! ```sh
//! cargo run --example custom_pipeline
//! ```

use cgp_core::datacutter::{
    Buffer, ClosureFilter, Filter, FilterIo, FilterResult, Pipeline, StageSpec,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A filter with per-copy state flushed at finalize (the reduction shape).
struct WordHasher {
    copy: usize,
    hashed: u64,
    count: u64,
}

impl Filter for WordHasher {
    fn process(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        while let Some(buf) = io.read() {
            for word in buf.as_slice().split(|b| *b == b' ') {
                let mut h = 0xcbf29ce484222325u64;
                for b in word {
                    h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
                }
                self.hashed ^= h;
                self.count += 1;
            }
        }
        Ok(())
    }

    fn finalize(&mut self, io: &mut FilterIo) -> FilterResult<()> {
        // Ship this copy's partial result downstream.
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.hashed.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        println!("  hasher copy {} processed {} words", self.copy, self.count);
        io.write(Buffer::from_vec(out))
    }

    fn name(&self) -> &str {
        "word-hasher"
    }
}

fn main() {
    let total_hash = Arc::new(AtomicU64::new(0));
    let total_count = Arc::new(AtomicU64::new(0));
    let (th, tc) = (Arc::clone(&total_hash), Arc::clone(&total_count));

    let stats = Pipeline::new()
        .with_capacity(16)
        .add_stage(StageSpec::new(
            "generate",
            1,
            Box::new(|_| {
                Box::new(ClosureFilter::new("generate", |io: &mut FilterIo| {
                    for i in 0..1000 {
                        let line = format!("packet {i} carries some words to hash");
                        io.write(Buffer::from_vec(line.into_bytes()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "hash",
            3,
            Box::new(|copy| {
                Box::new(WordHasher {
                    copy,
                    hashed: 0,
                    count: 0,
                })
            }),
        ))
        .add_stage(StageSpec::new(
            "aggregate",
            1,
            Box::new(move |_| {
                let th = Arc::clone(&th);
                let tc = Arc::clone(&tc);
                Box::new(ClosureFilter::new("aggregate", move |io: &mut FilterIo| {
                    while let Some(buf) = io.read() {
                        let b = buf.as_slice();
                        let h = u64::from_le_bytes(b[0..8].try_into().unwrap());
                        let c = u64::from_le_bytes(b[8..16].try_into().unwrap());
                        th.fetch_xor(h, Ordering::Relaxed);
                        tc.fetch_add(c, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ))
        .run()
        .expect("pipeline run");

    println!("\npipeline stats:");
    for s in &stats.stages {
        println!(
            "  {:<10} in {:>5} buffers / {:>7} B   out {:>5} buffers / {:>7} B",
            s.name, s.buffers_in, s.bytes_in, s.buffers_out, s.bytes_out
        );
    }
    println!(
        "\naggregated {} words, xor-hash {:#018x}",
        total_count.load(Ordering::Relaxed),
        total_hash.load(Ordering::Relaxed)
    );
    assert_eq!(total_count.load(Ordering::Relaxed), 7000);
}
