//! k-nearest-neighbor search: the paper's knn experiment in miniature,
//! plus the compiler path on the dialect version of the program.
//!
//! ```sh
//! cargo run --release --example knn_search
//! ```

use cgp_core::apps::dialect::{knn_host_env, KNN_SRC};
use cgp_core::apps::knn::{generate_points, KnnPipeline, KnnVersion};
use cgp_core::lang::{frontend, Interp};
use cgp_core::{
    compile, paper_grid, run_plan_sequential, simulate_variant, CompileOptions, PipelineEnv,
};

fn main() {
    let n = 200_000;
    let packets = 32;
    let query = [0.5f64, 0.5, 0.5];

    // --- native pipelines on the simulated grid -------------------------
    for k in [3usize, 200] {
        println!("== knn, {n} points, k = {k} ==");
        println!(
            "{:<10} {:>12} {:>14} {:>14}",
            "config", "Default(s)", "Decomp-Comp(s)", "Decomp-Man(s)"
        );
        for w in [1usize, 2, 4] {
            let grid = paper_grid(w);
            let mk = |version| {
                KnnPipeline::new(
                    generate_points(n, 42),
                    query,
                    k,
                    packets,
                    version,
                    format!("knn-k{k}"),
                )
            };
            let d = simulate_variant(&mut mk(KnnVersion::Default), &grid);
            let c = simulate_variant(&mut mk(KnnVersion::DecompComp), &grid);
            let m = simulate_variant(&mut mk(KnnVersion::DecompManual), &grid);
            assert_eq!(d.result_digest, c.result_digest);
            assert_eq!(c.result_digest, m.result_digest);
            println!(
                "{:<10} {:>12.4} {:>14.4} {:>14.4}",
                format!("{w}-{w}-1"),
                d.makespan,
                c.makespan,
                m.makespan
            );
        }
        println!();
    }

    // --- compiler path on the dialect program ---------------------------
    println!("== dialect knn through the compiler ==");
    let pts = generate_points(2_000, 42);
    let host = knn_host_env(&pts, [0.5, 0.5, 0.5], 5, 8);
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 256)
        .with_symbol("npoints", 2_000)
        .with_symbol("k", 5)
        .with_objective(cgp_core::Objective::SteadyState { n_packets: 8 });
    let compiled = compile(KNN_SRC, &opts).expect("compile");
    print!("{}", compiled.plan.describe());
    let out = run_plan_sequential(&compiled.plan, &host).unwrap();
    let typed = frontend(KNN_SRC).unwrap();
    let mut interp = Interp::new(&typed, host);
    interp.run_main().unwrap();
    assert_eq!(out, interp.output);
    println!("decomposed run matches the interpreter: {out:?} ✓");
}
