//! Isosurface rendering on a simulated grid: the paper's z-buffer and
//! active-pixel experiments in miniature.
//!
//! Runs the real extraction/rendering computation packet by packet, then
//! replays the pipeline schedule on simulated 1-1-1 / 2-2-1 / 4-4-1
//! configurations, comparing the Default placement against the compiler's
//! decomposition (crossing test at the data nodes).
//!
//! ```sh
//! cargo run --release --example isosurface_render
//! ```

use cgp_core::apps::isosurface::{IsoPipeline, IsoVersion, Renderer, ScalarGrid, ISOVALUE};
use cgp_core::{paper_grid, simulate_variant};

fn main() {
    let grid_dims = 40;
    let packets = 32;
    let screen = 128;

    for renderer in [Renderer::ZBuffer, Renderer::ActivePixels] {
        let rname = match renderer {
            Renderer::ZBuffer => "zbuf",
            Renderer::ActivePixels => "active-pixels",
        };
        println!("== isosurface ({rname}), {grid_dims}^3 grid, {packets} packets ==");
        println!(
            "{:<10} {:>12} {:>12} {:>9}",
            "config", "Default(s)", "Decomp(s)", "gain"
        );
        let mut digests = Vec::new();
        for w in [1usize, 2, 4] {
            let grid_cfg = paper_grid(w);
            let mk = |version| {
                IsoPipeline::new(
                    ScalarGrid::synthetic(grid_dims, grid_dims, grid_dims, 20030517),
                    ISOVALUE,
                    packets,
                    screen,
                    renderer,
                    version,
                    format!("iso-{rname}"),
                )
            };
            let def = simulate_variant(&mut mk(IsoVersion::Default), &grid_cfg);
            let dec = simulate_variant(&mut mk(IsoVersion::Decomp), &grid_cfg);
            assert_eq!(def.result_digest, dec.result_digest, "versions must agree");
            digests.push(dec.result_digest);
            println!(
                "{:<10} {:>12.4} {:>12.4} {:>8.1}%",
                format!("{w}-{w}-1"),
                def.makespan,
                dec.makespan,
                (def.makespan / dec.makespan - 1.0) * 100.0
            );
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        println!();
    }
    println!("all configurations produced identical images ✓");
}
