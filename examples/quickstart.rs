//! Quickstart: compile a dialect program, inspect the decomposition, and
//! run it three ways — sequential interpreter (the semantics oracle),
//! single-threaded plan execution with real packed buffers, and threaded
//! execution on the DataCutter-style runtime.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cgp_core::lang::{frontend, HostEnv, Interp, Value};
use cgp_core::{compile, run_plan_sequential, run_plan_threaded, CompileOptions, PipelineEnv};
use std::sync::Arc;

const SRC: &str = r#"
    extern int n;
    extern double[] samples;
    runtime_define int num_packets;

    class Stats implements Reducinterface {
        double sum;
        int count;
        void reduce(Stats other) { sum = sum + other.sum; count = count + other.count; }
        void add(double v) { sum = sum + v; count = count + 1; }
    }

    class Quickstart {
        void main() {
            RectDomain<1> all = [0 : n - 1];
            Stats outliers = new Stats();
            PipelinedLoop (pkt in all; num_packets) {
                foreach (i in pkt) {
                    double v = samples[i] * samples[i];
                    if (v > 0.5) {
                        outliers.add(v);
                    }
                }
            }
            print(outliers.sum);
            print(outliers.count);
        }
    }
"#;

fn host() -> HostEnv {
    let n = 10_000i64;
    let samples = Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
        (0..n)
            .map(|i| Value::Double(((i * 37 % 1000) as f64) / 1000.0))
            .collect(),
    )));
    HostEnv::new()
        .bind("n", Value::Int(n))
        .bind("num_packets", Value::Int(16))
        .bind("samples", samples)
}

fn main() {
    // Compile for a 3-unit pipeline: data host → compute host → desktop.
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e8, 2e-6), 625)
        .with_symbol("n", 10_000)
        .with_selectivity(0, 0.4)
        .with_objective(cgp_core::Objective::SteadyState { n_packets: 16 });
    let compiled = compile(SRC, &opts).expect("compilation failed");

    println!("== decomposition ==");
    print!("{}", compiled.plan.describe());
    println!(
        "\nestimated per-packet stage times: comp {:?} comm {:?}",
        compiled.stage_times().comp,
        compiled.stage_times().comm
    );

    // 1. Sequential interpreter — defines the expected answer.
    let typed = frontend(SRC).unwrap();
    let mut interp = Interp::new(&typed, host());
    interp.run_main().unwrap();
    println!("\ninterpreter oracle : {:?}", interp.output);

    // 2. Single-threaded plan execution with real buffer packing.
    let sequential = run_plan_sequential(&compiled.plan, &host()).unwrap();
    println!("plan (sequential)  : {sequential:?}");

    // 3. Threaded execution on the filter-stream runtime, width 2 compute.
    let threaded = run_plan_threaded(
        Arc::new(compiled.plan.clone()),
        Arc::new(host),
        Some(&[1, 2, 1]),
    )
    .unwrap();
    println!("plan (threads 1-2-1): {threaded:?}");

    assert_eq!(interp.output, sequential);
    // The width-2 compute stage splits the reduction across copies, so the
    // double sum is accumulated in a different order than the sequential
    // oracle — compare numerically, not textually.
    assert_eq!(interp.output.len(), threaded.len());
    for (a, b) in interp.output.iter().zip(&threaded) {
        match (a.parse::<f64>(), b.parse::<f64>()) {
            (Ok(x), Ok(y)) => assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                "outputs diverge beyond rounding: {a} vs {b}"
            ),
            _ => assert_eq!(a, b),
        }
    }
    println!("\nall three executions agree ✓");
}
