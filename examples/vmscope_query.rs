//! Virtual-microscope queries: the paper's vmscope experiment in
//! miniature — Default vs Decomp-Comp vs Decomp-Manual on small and large
//! queries, showing the compiler-vs-manual gap caused by conditional
//! subsampling vs strided reads.
//!
//! ```sh
//! cargo run --release --example vmscope_query
//! ```

use cgp_core::apps::vmscope::{large_query, small_query, Slide, VmVersion, VmscopePipeline};
use cgp_core::{paper_grid, simulate_variant};

fn main() {
    let slide = Slide::synthetic(1024, 1024, 7);
    for (qname, query, packets) in [
        ("small query", small_query(), 8),
        ("large query", large_query(), 64),
    ] {
        println!(
            "== vmscope, {qname}: {}x{} region, 1/{} subsampling ==",
            query.width, query.height, query.subsample
        );
        println!(
            "{:<10} {:>12} {:>14} {:>14}",
            "config", "Default(s)", "Decomp-Comp(s)", "Decomp-Man(s)"
        );
        for w in [1usize, 2, 4] {
            let grid = paper_grid(w);
            let mk = |version| VmscopePipeline::new(slide.clone(), query, packets, version, qname);
            let d = simulate_variant(&mut mk(VmVersion::Default), &grid);
            let c = simulate_variant(&mut mk(VmVersion::DecompComp), &grid);
            let m = simulate_variant(&mut mk(VmVersion::DecompManual), &grid);
            assert_eq!(d.result_digest, c.result_digest);
            assert_eq!(c.result_digest, m.result_digest);
            println!(
                "{:<10} {:>12.4} {:>14.4} {:>14.4}",
                format!("{w}-{w}-1"),
                d.makespan,
                c.makespan,
                m.makespan
            );
        }
        println!();
    }
    println!("all versions produced identical output images ✓");
}
